package analysis

import (
	"math"
	"math/big"
	"testing"
)

func TestBestCaseKnownValues(t *testing.T) {
	if got := BestDataNodes(24, 3); got.Cmp(big.NewInt(13824)) != 0 {
		t.Fatalf("td_best(24,3) = %v", got)
	}
	// ti = 1 + F + F^2 = 601
	if got := BestIndexNodes(24, 3); got.Cmp(big.NewInt(601)) != 0 {
		t.Fatalf("ti_best(24,3) = %v", got)
	}
}

func TestWorstRecursionMatchesClosedForm(t *testing.T) {
	// Equation (4)'s recursion equals C(F+h-1, h) exactly — the exact
	// antecedent of the paper's approximation (5).
	for _, f := range []int{4, 24, 60, 120} {
		for h := 1; h <= 12; h++ {
			rec := WorstDataNodes(f, h)
			closed := WorstDataNodesClosed(f, h)
			if rec.Cmp(closed) != 0 {
				t.Fatalf("F=%d h=%d: recursion %v != closed %v", f, h, rec, closed)
			}
		}
	}
}

func TestWorstCaseReductionFactorHFactorial(t *testing.T) {
	// Equation (5): td_worst ≈ F^h / h! for F >> h. With F=120, h=5 the
	// ratio best/worst must be within a few percent of h!.
	f, h := 120, 5
	best := new(big.Rat).SetInt(BestDataNodes(f, h))
	worst := WorstDataNodes(f, h)
	ratio := new(big.Rat).Quo(best, worst)
	rf, _ := ratio.Float64()
	hfact := 120.0 // 5!
	if math.Abs(rf-hfact)/hfact > 0.1 {
		t.Fatalf("best/worst = %v, want ≈ %v", rf, hfact)
	}
}

func TestIndexToDataRatioNearOneOverF(t *testing.T) {
	// Equation (9): ti/td ≈ 1/F in the worst case (and (3) in the best).
	for _, f := range []int{24, 120} {
		for h := 2; h <= 8; h++ {
			ti := WorstIndexNodes(f, h)
			td := WorstDataNodes(f, h)
			ratio := new(big.Rat).Quo(ti, td)
			rf, _ := ratio.Float64()
			if math.Abs(rf*float64(f)-1) > 0.15 {
				t.Fatalf("F=%d h=%d: ti/td = %v, want ≈ 1/%d", f, h, rf, f)
			}
			bestRatio := new(big.Rat).SetFrac(BestIndexNodes(f, h), BestDataNodes(f, h))
			bf, _ := bestRatio.Float64()
			if math.Abs(bf*float64(f)-1) > 0.15 {
				t.Fatalf("F=%d h=%d: best ti/td = %v", f, h, bf)
			}
		}
	}
}

func TestScaledPagesRemovePenalty(t *testing.T) {
	// Equation (12): with level-scaled pages the worst case holds
	// F(F+1)^(h-1) data nodes — within (1+1/F)^(h-1) of the best case,
	// i.e. "the same as the best case for practical fan-out ratios".
	for _, f := range []int{24, 120} {
		for h := 1; h <= 9; h++ {
			scaled := new(big.Float).SetInt(ScaledWorstDataNodes(f, h))
			best := new(big.Float).SetInt(BestDataNodes(f, h))
			ratio, _ := new(big.Float).Quo(scaled, best).Float64()
			lo := 1.0
			hi := math.Pow(1+1/float64(f), float64(h-1)) + 1e-9
			if ratio < lo-1e-9 || ratio > hi {
				t.Fatalf("F=%d h=%d: scaled/best = %v outside [1, %v]", f, h, ratio, hi)
			}
		}
	}
}

func TestScaledIndexSizeRecursionMatchesApproximation(t *testing.T) {
	// Equation (18): si(h) ≈ B·F^(h-1); exact value from (17) must be
	// within (1+2/F)^h of it.
	b, f := 4096, 120
	for h := 1; h <= 8; h++ {
		si := ScaledIndexSize(b, f, h)
		approx := new(big.Int).Exp(big.NewInt(int64(f)), big.NewInt(int64(h-1)), nil)
		approx.Mul(approx, big.NewInt(int64(b)))
		r := new(big.Rat).SetFrac(si, approx)
		rf, _ := r.Float64()
		if rf < 1 || rf > math.Pow(1+2/float64(f), float64(h)) {
			t.Fatalf("h=%d: si/approx = %v", h, rf)
		}
	}
}

func TestFig7SeriesGapEqualsLogFactorial(t *testing.T) {
	// The shaded gap in Figures 7-1/7-2 is log_F(h!); with the closed
	// form C(F+h-1,h) the measured gap approaches it from below and gets
	// within ~h(h-1)/(2F·lnF) for F >> h.
	for _, f := range []int{24, 120} {
		rows := Fig7Series(f, 9)
		for _, r := range rows {
			if math.Abs(r.BestLogF-float64(r.H)) > 1e-9 {
				t.Fatalf("best curve must be the identity: h=%d got %v", r.H, r.BestLogF)
			}
			if r.Gap < -1e-9 {
				t.Fatalf("negative gap at h=%d", r.H)
			}
			if r.Gap > r.LogFHFactorial+1e-9 {
				t.Fatalf("gap %v exceeds log_F h! = %v at h=%d (F=%d)", r.Gap, r.LogFHFactorial, r.H, f)
			}
			// Within 35% of the analytic value for h >= 3.
			if r.H >= 3 && r.LogFHFactorial > 0 {
				rel := (r.LogFHFactorial - r.Gap) / r.LogFHFactorial
				if rel > 0.35 {
					t.Fatalf("F=%d h=%d: gap %v too far from log_F h! %v", f, r.H, r.Gap, r.LogFHFactorial)
				}
			}
		}
	}
}

func TestPaperFig71HeightClaims(t *testing.T) {
	// §7.2 reads Figure 7-1 (F=24): "a best-case three-level index will
	// have to grow to height 4 ... a best-case tree of height 4 will have
	// to grow to height 6, and a best-case tree of height 5 will have to
	// grow to height 10."
	rows := CapacityTable(24, 1024, 5)
	for _, r := range rows {
		switch r.H {
		case 3:
			if r.ExtraLevels != 1 {
				t.Fatalf("F=24 h=3: extra = %d, paper says 1", r.ExtraLevels)
			}
		case 4:
			if r.ExtraLevels != 2 {
				t.Fatalf("F=24 h=4: extra = %d, paper says 2", r.ExtraLevels)
			}
		case 5:
			// The paper reads "height 10" (extra 5) off its figure, which
			// plots the F^h/h! approximation; the exact binomial model
			// gives height 9 (extra 4). Accept both and record the
			// discrepancy in EXPERIMENTS.md.
			if r.ExtraLevels < 4 || r.ExtraLevels > 5 {
				t.Fatalf("F=24 h=5: extra = %d, paper says 5 (exact model: 4)", r.ExtraLevels)
			}
		}
	}
}

func TestPaperFig72HeightClaims(t *testing.T) {
	// §7.2 on Figure 7-2 (F=120): "a tree of height 4 need only grow to
	// height 5, and a tree of height 6 need only grow to a height between
	// 8 and 9."
	rows := CapacityTable(120, 1024, 6)
	for _, r := range rows {
		switch r.H {
		case 4:
			if r.ExtraLevels != 1 {
				t.Fatalf("F=120 h=4: extra = %d, paper says 1", r.ExtraLevels)
			}
		case 6:
			if r.ExtraLevels < 2 || r.ExtraLevels > 3 {
				t.Fatalf("F=120 h=6: extra = %d, paper says between 2 and 3", r.ExtraLevels)
			}
		}
	}
}

func TestPaperPetabyteClaim(t *testing.T) {
	// §7.2: with F=120 and 1KB data pages, a height-9 worst-case tree
	// (best-case height 6 grown to 8–9) corresponds to ~3 PB — more
	// precisely, the best-case height-6 file is ~3×10^15 bytes? The paper
	// says "If the data pages are 1 Kbyte each, the latter corresponds to
	// a 3 Petabyte file". Height 6 at F=120: 120^6 × 1024 ≈ 3.06e15. ✓
	best := BestDataNodes(120, 6)
	bytes := new(big.Int).Mul(best, big.NewInt(1024))
	want := new(big.Int).SetUint64(3_000_000_000_000_000)
	lo := new(big.Int).Div(want, big.NewInt(2))
	hi := new(big.Int).Mul(want, big.NewInt(2))
	if bytes.Cmp(lo) < 0 || bytes.Cmp(hi) > 0 {
		t.Fatalf("height-6 F=120 file = %s, paper says ~3PB", HumanBytes(bytes))
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		v    int64
		want string
	}{
		{512, "512B"},
		{2048, "2.0KB"},
		{3_100_000_000, "3.1GB"},
	}
	for _, c := range cases {
		if got := HumanBytes(big.NewInt(c.v)); got != c.want {
			t.Fatalf("HumanBytes(%d) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestLogFHandlesHugeValues(t *testing.T) {
	// Values beyond float64 range must still produce finite logs.
	huge := new(big.Int).Exp(big.NewInt(120), big.NewInt(400), nil)
	got := LogFInt(huge, 120)
	if math.Abs(got-400) > 1e-6 {
		t.Fatalf("log_120(120^400) = %v", got)
	}
}
