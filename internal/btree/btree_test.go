package btree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(2); err == nil {
		t.Fatal("order 2 accepted")
	}
	if _, err := New(3); err != nil {
		t.Fatal(err)
	}
}

func TestInsertSearchSequential(t *testing.T) {
	tr, _ := New(4)
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(i, i*10)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		got := tr.Search(i)
		if len(got) != 1 || got[0] != i*10 {
			t.Fatalf("Search(%d) = %v", i, got)
		}
	}
	if got := tr.Search(5000); got != nil {
		t.Fatalf("missing key returned %v", got)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr, _ := New(4)
	for i := uint64(0); i < 50; i++ {
		tr.Insert(7, i)
		tr.Insert(9, 100+i)
	}
	got := tr.Search(7)
	if len(got) != 50 {
		t.Fatalf("Search(7) returned %d payloads", len(got))
	}
	seen := map[uint64]bool{}
	for _, v := range got {
		seen[v] = true
	}
	for i := uint64(0); i < 50; i++ {
		if !seen[i] {
			t.Fatalf("payload %d missing", i)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeOrderedAndComplete(t *testing.T) {
	tr, _ := New(6)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 3000)
	for i := range keys {
		keys[i] = rng.Uint64()
		tr.Insert(keys[i], uint64(i))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for trial := 0; trial < 40; trial++ {
		lo, hi := rng.Uint64(), rng.Uint64()
		if lo > hi {
			lo, hi = hi, lo
		}
		var got []uint64
		tr.Range(lo, hi, func(k, v uint64) bool {
			got = append(got, k)
			return true
		})
		var want []uint64
		for _, k := range keys {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("range [%d,%d]: got %d keys, want %d", lo, hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("range order mismatch at %d", i)
			}
			if i > 0 && got[i-1] > got[i] {
				t.Fatal("range not sorted")
			}
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr, _ := New(4)
	for i := uint64(0); i < 100; i++ {
		tr.Insert(i, i)
	}
	n := 0
	tr.Range(0, 99, func(k, v uint64) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestDeleteRandomAgainstModel(t *testing.T) {
	tr, _ := New(5)
	rng := rand.New(rand.NewSource(2))
	type kv struct{ k, v uint64 }
	var live []kv
	for op := 0; op < 6000; op++ {
		if len(live) == 0 || rng.Float64() < 0.55 {
			k := uint64(rng.Intn(500)) // collisions likely
			v := rng.Uint64()
			tr.Insert(k, v)
			live = append(live, kv{k, v})
		} else {
			i := rng.Intn(len(live))
			if !tr.Delete(live[i].k, live[i].v) {
				t.Fatalf("op %d: delete of live item failed", op)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if op%500 == 499 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if tr.Len() != len(live) {
				t.Fatalf("op %d: Len=%d want %d", op, tr.Len(), len(live))
			}
		}
	}
	if tr.Delete(12345678, 1) {
		t.Fatal("delete of absent item succeeded")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHeightLogarithmic(t *testing.T) {
	tr, _ := New(16)
	rng := rand.New(rand.NewSource(3))
	n := 100000
	for i := 0; i < n; i++ {
		tr.Insert(rng.Uint64(), uint64(i))
	}
	// height <= ceil(log_{order/2}(n)) + 1
	maxH := int(math.Ceil(math.Log(float64(n))/math.Log(8))) + 1
	if tr.Height() > maxH {
		t.Fatalf("height %d exceeds bound %d for %d keys", tr.Height(), maxH, n)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAccessCounting(t *testing.T) {
	tr, _ := New(4)
	for i := uint64(0); i < 200; i++ {
		tr.Insert(i, i)
	}
	tr.ResetAccesses()
	tr.Search(77)
	if got := tr.NodeAccesses(); got == 0 || got > uint64(tr.Height()+3) {
		t.Fatalf("search accesses = %d, height %d", got, tr.Height())
	}
	if tr.ResetAccesses() == 0 {
		t.Fatal("reset returned zero")
	}
	if tr.NodeAccesses() != 0 {
		t.Fatal("reset did not zero counter")
	}
}

func TestDeleteToEmptyAndReuse(t *testing.T) {
	tr, _ := New(4)
	for i := uint64(0); i < 300; i++ {
		tr.Insert(i, i)
	}
	for i := uint64(0); i < 300; i++ {
		if !tr.Delete(i, i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("after drain: len=%d height=%d", tr.Len(), tr.Height())
	}
	for i := uint64(0); i < 300; i++ {
		tr.Insert(i, i+1)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Search(100); len(got) != 1 || got[0] != 101 {
		t.Fatalf("reuse broken: %v", got)
	}
}
