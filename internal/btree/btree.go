// Package btree implements a classic in-memory B+-tree over uint64 keys
// with uint64 payloads. It serves two roles in this module: it is the
// one-dimensional reference the BV-tree must degenerate towards (§2 of the
// paper), and it is the substrate of the Z-order-mapping baseline of
// package zbtree [Ore86].
package btree

import (
	"fmt"
	"sort"
)

// Tree is a B+-tree. Duplicate keys are allowed; items with equal keys are
// adjacent in leaf order. The zero value is not usable; call New.
type Tree struct {
	order    int // max keys per node
	root     *node
	height   int // number of internal levels above the leaves (0 = root is leaf)
	size     int
	accesses uint64
}

type node struct {
	// Internal nodes: keys[i] is the smallest key reachable through
	// children[i+1]; len(children) == len(keys)+1.
	// Leaves: keys and vals are parallel; next links the leaf chain.
	leaf     bool
	keys     []uint64
	vals     []uint64
	children []*node
	next     *node
}

// New returns an empty B+-tree with the given order (maximum keys per
// node, minimum 3).
func New(order int) (*Tree, error) {
	if order < 3 {
		return nil, fmt.Errorf("btree: order %d below minimum 3", order)
	}
	return &Tree{order: order, root: &node{leaf: true}}, nil
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Height returns the number of internal levels above the leaves.
func (t *Tree) Height() int { return t.height }

// NodeAccesses returns the cumulative count of node visits.
func (t *Tree) NodeAccesses() uint64 { return t.accesses }

// ResetAccesses zeroes the access counter and returns the prior value.
func (t *Tree) ResetAccesses() uint64 {
	v := t.accesses
	t.accesses = 0
	return v
}

// Insert stores (key, val).
func (t *Tree) Insert(key, val uint64) {
	sep, right := t.insert(t.root, key, val)
	if right != nil {
		t.root = &node{
			keys:     []uint64{sep},
			children: []*node{t.root, right},
		}
		t.height++
	}
	t.size++
}

// insert returns a separator and new right sibling when n split.
func (t *Tree) insert(n *node, key, val uint64) (uint64, *node) {
	t.accesses++
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		if len(n.keys) <= t.order {
			return 0, nil
		}
		mid := len(n.keys) / 2
		right := &node{
			leaf: true,
			keys: append([]uint64(nil), n.keys[mid:]...),
			vals: append([]uint64(nil), n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = right
		return right.keys[0], right
	}
	ci := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
	sep, right := t.insert(n.children[ci], key, val)
	if right == nil {
		return 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.keys) <= t.order {
		return 0, nil
	}
	mid := len(n.keys) / 2
	upSep := n.keys[mid]
	rn := &node{
		keys:     append([]uint64(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return upSep, rn
}

// Search returns the payloads of every item with the given key.
//
// Duplicates may straddle leaf boundaries (a split can divide a run of
// equal keys), so the descent goes to the leftmost candidate leaf and the
// scan continues along the leaf chain until a larger key appears.
func (t *Tree) Search(key uint64) []uint64 {
	n := t.root
	for !n.leaf {
		t.accesses++
		ci := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		n = n.children[ci]
	}
	var out []uint64
	for n != nil {
		t.accesses++
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		for ; i < len(n.keys) && n.keys[i] == key; i++ {
			out = append(out, n.vals[i])
		}
		if i < len(n.keys) {
			break // reached a key greater than the target
		}
		n = n.next
	}
	return out
}

// Range invokes visit for every item with lo <= key <= hi, in key order.
// Returning false stops the scan.
func (t *Tree) Range(lo, hi uint64, visit func(key, val uint64) bool) {
	n := t.root
	for !n.leaf {
		t.accesses++
		ci := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
		n = n.children[ci]
	}
	for n != nil {
		t.accesses++
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
		for ; i < len(n.keys); i++ {
			if n.keys[i] > hi {
				return
			}
			if !visit(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// Delete removes one item matching (key, val) and reports success. Nodes
// are rebalanced by redistribution or merge to keep the classic half-full
// minimum (except the root).
func (t *Tree) Delete(key, val uint64) bool {
	ok := t.delete(t.root, key, val)
	if !ok {
		return false
	}
	t.size--
	// Shrink the root.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.height--
	}
	return true
}

func (t *Tree) delete(n *node, key, val uint64) bool {
	t.accesses++
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		for ; i < len(n.keys) && n.keys[i] == key; i++ {
			if n.vals[i] == val {
				n.keys = append(n.keys[:i], n.keys[i+1:]...)
				n.vals = append(n.vals[:i], n.vals[i+1:]...)
				return true
			}
		}
		return false
	}
	// Items with equal keys may straddle child boundaries: start at the
	// leftmost candidate child and try successive children while the
	// separator to their left equals the key.
	ci := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	for ci < len(n.children) {
		if t.delete(n.children[ci], key, val) {
			t.rebalance(n, ci)
			return true
		}
		if ci < len(n.keys) && n.keys[ci] == key {
			ci++
			continue
		}
		return false
	}
	return false
}

func (t *Tree) minKeys() int { return t.order / 2 }

// rebalance restores the minimum occupancy of n.children[ci].
func (t *Tree) rebalance(n *node, ci int) {
	c := n.children[ci]
	if len(c.keys) >= t.minKeys() {
		return
	}
	// Try borrowing from the left sibling.
	if ci > 0 {
		l := n.children[ci-1]
		if len(l.keys) > t.minKeys() {
			if c.leaf {
				c.keys = append([]uint64{l.keys[len(l.keys)-1]}, c.keys...)
				c.vals = append([]uint64{l.vals[len(l.vals)-1]}, c.vals...)
				l.keys = l.keys[:len(l.keys)-1]
				l.vals = l.vals[:len(l.vals)-1]
				n.keys[ci-1] = c.keys[0]
			} else {
				c.keys = append([]uint64{n.keys[ci-1]}, c.keys...)
				c.children = append([]*node{l.children[len(l.children)-1]}, c.children...)
				n.keys[ci-1] = l.keys[len(l.keys)-1]
				l.keys = l.keys[:len(l.keys)-1]
				l.children = l.children[:len(l.children)-1]
			}
			return
		}
	}
	// Try borrowing from the right sibling.
	if ci < len(n.children)-1 {
		r := n.children[ci+1]
		if len(r.keys) > t.minKeys() {
			if c.leaf {
				c.keys = append(c.keys, r.keys[0])
				c.vals = append(c.vals, r.vals[0])
				r.keys = r.keys[1:]
				r.vals = r.vals[1:]
				n.keys[ci] = r.keys[0]
			} else {
				c.keys = append(c.keys, n.keys[ci])
				c.children = append(c.children, r.children[0])
				n.keys[ci] = r.keys[0]
				r.keys = r.keys[1:]
				r.children = r.children[1:]
			}
			return
		}
	}
	// Merge with a sibling.
	if ci > 0 {
		t.mergeChildren(n, ci-1)
	} else if ci < len(n.children)-1 {
		t.mergeChildren(n, ci)
	}
}

// mergeChildren merges n.children[i+1] into n.children[i].
func (t *Tree) mergeChildren(n *node, i int) {
	l, r := n.children[i], n.children[i+1]
	if l.leaf {
		l.keys = append(l.keys, r.keys...)
		l.vals = append(l.vals, r.vals...)
		l.next = r.next
	} else {
		l.keys = append(l.keys, n.keys[i])
		l.keys = append(l.keys, r.keys...)
		l.children = append(l.children, r.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Validate checks the structural invariants: key ordering, child counts,
// leaf chain consistency and item count.
func (t *Tree) Validate() error {
	count := 0
	var prevLeaf *node
	var walk func(n *node, depth int, lo, hi uint64, loOK, hiOK bool) error
	walk = func(n *node, depth int, lo, hi uint64, loOK, hiOK bool) error {
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] > n.keys[i] {
				return fmt.Errorf("btree: unsorted keys at depth %d", depth)
			}
		}
		for _, k := range n.keys {
			if loOK && k < lo {
				return fmt.Errorf("btree: key %d below separator %d", k, lo)
			}
			if hiOK && k > hi {
				return fmt.Errorf("btree: key %d above separator %d", k, hi)
			}
		}
		if n.leaf {
			if depth != t.height {
				return fmt.Errorf("btree: leaf at depth %d, height %d", depth, t.height)
			}
			if len(n.keys) != len(n.vals) {
				return fmt.Errorf("btree: leaf keys/vals mismatch")
			}
			if prevLeaf != nil && prevLeaf.next != n {
				return fmt.Errorf("btree: broken leaf chain")
			}
			prevLeaf = n
			count += len(n.keys)
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("btree: internal node has %d children for %d keys", len(n.children), len(n.keys))
		}
		if n != t.root && len(n.keys) < t.minKeys() {
			return fmt.Errorf("btree: internal underflow: %d keys", len(n.keys))
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			cloOK, chiOK := loOK, hiOK
			if i > 0 {
				clo, cloOK = n.keys[i-1], true
			}
			if i < len(n.keys) {
				chi, chiOK = n.keys[i], true
			}
			if err := walk(c, depth+1, clo, chi, cloOK, chiOK); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, 0, 0, false, false); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: walked %d items, size %d", count, t.size)
	}
	return nil
}
