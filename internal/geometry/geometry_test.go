package geometry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointCloneEqual(t *testing.T) {
	p := Point{1, 2, 3}
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal")
	}
	q[0] = 99
	if p.Equal(q) {
		t.Fatal("clone aliases original")
	}
	if p.Equal(Point{1, 2}) {
		t.Fatal("points of different dims compared equal")
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{1, 2}).String(); got != "(1, 2)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestNewRectValidation(t *testing.T) {
	if _, err := NewRect(Point{1}, Point{0}); err == nil {
		t.Fatal("inverted bounds accepted")
	}
	if _, err := NewRect(Point{1}, Point{1, 2}); err == nil {
		t.Fatal("mismatched dims accepted")
	}
	r, err := NewRect(Point{1, 2}, Point{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains(Point{1, 2}) || !r.Contains(Point{3, 4}) || !r.Contains(Point{2, 3}) {
		t.Fatal("boundary containment broken")
	}
	if r.Contains(Point{0, 3}) || r.Contains(Point{2, 5}) {
		t.Fatal("outside point contained")
	}
}

func TestUniverseRect(t *testing.T) {
	u := UniverseRect(3)
	if !u.Contains(Point{0, math.MaxUint64, 12345}) {
		t.Fatal("universe does not contain extremes")
	}
	if u.Dims() != 3 {
		t.Fatal("wrong dims")
	}
}

func TestIntersect(t *testing.T) {
	a, _ := NewRect(Point{0, 0}, Point{10, 10})
	b, _ := NewRect(Point{5, 5}, Point{20, 20})
	c, ok := a.Intersect(b)
	if !ok {
		t.Fatal("intersecting rects reported disjoint")
	}
	want, _ := NewRect(Point{5, 5}, Point{10, 10})
	if !c.Equal(want) {
		t.Fatalf("intersection = %v, want %v", c, want)
	}
	d, _ := NewRect(Point{11, 0}, Point{12, 10})
	if a.Intersects(d) {
		t.Fatal("disjoint rects reported intersecting")
	}
	if _, ok := a.Intersect(d); ok {
		t.Fatal("Intersect returned ok for disjoint rects")
	}
	// Touching edges intersect (closed rectangles).
	e, _ := NewRect(Point{10, 10}, Point{12, 12})
	if !a.Intersects(e) {
		t.Fatal("touching rects reported disjoint")
	}
}

func TestContainsRect(t *testing.T) {
	a, _ := NewRect(Point{0, 0}, Point{10, 10})
	b, _ := NewRect(Point{2, 2}, Point{8, 8})
	if !a.ContainsRect(b) || b.ContainsRect(a) {
		t.Fatal("ContainsRect wrong")
	}
	if !a.ContainsRect(a) {
		t.Fatal("rect does not contain itself")
	}
}

func TestIntersectionCommutesAndShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mk := func() Rect {
		a := Point{rng.Uint64(), rng.Uint64()}
		b := Point{rng.Uint64(), rng.Uint64()}
		min := Point{}
		max := Point{}
		for i := 0; i < 2; i++ {
			lo, hi := a[i], b[i]
			if lo > hi {
				lo, hi = hi, lo
			}
			min = append(min, lo)
			max = append(max, hi)
		}
		r, _ := NewRect(min, max)
		return r
	}
	for i := 0; i < 200; i++ {
		a, b := mk(), mk()
		ab, ok1 := a.Intersect(b)
		ba, ok2 := b.Intersect(a)
		if ok1 != ok2 {
			t.Fatal("intersection not commutative in ok")
		}
		if ok1 {
			if !ab.Equal(ba) {
				t.Fatal("intersection not commutative")
			}
			if !a.ContainsRect(ab) || !b.ContainsRect(ab) {
				t.Fatal("intersection not contained in operands")
			}
		}
	}
}

func TestNormalizeFloatMonotonic(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		ua := NormalizeFloat(a, -1000, 1000)
		ub := NormalizeFloat(b, -1000, 1000)
		if a < b {
			return ua <= ub
		}
		if a > b {
			return ua >= ub
		}
		return ua == ub
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeFloatBounds(t *testing.T) {
	if NormalizeFloat(-5, 0, 1) != 0 {
		t.Fatal("below-range not clamped to 0")
	}
	if NormalizeFloat(5, 0, 1) != math.MaxUint64 {
		t.Fatal("above-range not clamped to max")
	}
	if NormalizeFloat(math.NaN(), 0, 1) != 0 {
		t.Fatal("NaN not mapped to 0")
	}
	if NormalizeFloat(0.5, 1, 0) != 0 {
		t.Fatal("degenerate interval not handled")
	}
}

func TestDenormalizeRoundTrip(t *testing.T) {
	for _, v := range []float64{-999, -1, 0, 0.125, 1, 500, 999} {
		u := NormalizeFloat(v, -1000, 1000)
		back := DenormalizeFloat(u, -1000, 1000)
		if math.Abs(back-v) > 1e-9 {
			t.Fatalf("round trip %v -> %v", v, back)
		}
	}
}

func TestLogVolume(t *testing.T) {
	u := UniverseRect(2)
	if math.Abs(u.LogVolume()-128) > 1e-6 {
		t.Fatalf("universe 2d log-volume = %v, want 128", u.LogVolume())
	}
	r, _ := NewRect(Point{0, 0}, Point{0, 0})
	if r.LogVolume() != 0 {
		t.Fatalf("unit rect log-volume = %v", r.LogVolume())
	}
}
