// Package geometry provides the n-dimensional point and rectangle
// primitives shared by every index structure in this repository.
//
// Coordinates are held as unsigned 64-bit integers. Indexes that accept
// floating-point input normalise it into this integer domain first (see
// NormalizeFloat); working in a fixed integer domain is what makes the
// regular binary partitioning of the data space (package region) exact,
// with no floating-point edge cases on partition boundaries.
package geometry

import (
	"fmt"
	"math"
	"strings"
)

// MaxDims is the largest dimensionality supported by the indexes in this
// module. It is a sanity bound, not a structural constant.
const MaxDims = 32

// Point is a point in an n-dimensional data space. The slice length is the
// dimensionality. Points are value-like: operations never mutate their
// receivers.
type Point []uint64

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String renders the point as "(x, y, ...)".
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Rect is a closed axis-aligned rectangle [Min[i], Max[i]] in every
// dimension. Min and Max must have the same length.
type Rect struct {
	Min Point
	Max Point
}

// NewRect returns the rectangle spanning min..max, validating that the
// bounds are consistent.
func NewRect(min, max Point) (Rect, error) {
	if len(min) != len(max) {
		return Rect{}, fmt.Errorf("geometry: rect bounds have mismatched dimensions %d and %d", len(min), len(max))
	}
	for i := range min {
		if min[i] > max[i] {
			return Rect{}, fmt.Errorf("geometry: rect min[%d]=%d exceeds max[%d]=%d", i, min[i], i, max[i])
		}
	}
	return Rect{Min: min.Clone(), Max: max.Clone()}, nil
}

// UniverseRect returns the rectangle covering the entire dims-dimensional
// data space.
func UniverseRect(dims int) Rect {
	min := make(Point, dims)
	max := make(Point, dims)
	for i := range max {
		max[i] = math.MaxUint64
	}
	return Rect{Min: min, Max: max}
}

// Dims returns the dimensionality of the rectangle.
func (r Rect) Dims() int { return len(r.Min) }

// Clone returns an independent copy of r.
func (r Rect) Clone() Rect {
	return Rect{Min: r.Min.Clone(), Max: r.Max.Clone()}
}

// Contains reports whether p lies inside r (boundaries inclusive).
func (r Rect) Contains(p Point) bool {
	if len(p) != len(r.Min) {
		return false
	}
	for i := range p {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Dims() != r.Dims() {
		return false
	}
	for i := range r.Min {
		if s.Min[i] < r.Min[i] || s.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if s.Dims() != r.Dims() {
		return false
	}
	for i := range r.Min {
		if s.Max[i] < r.Min[i] || s.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of r and s. ok is false when the
// rectangles are disjoint.
func (r Rect) Intersect(s Rect) (out Rect, ok bool) {
	if !r.Intersects(s) {
		return Rect{}, false
	}
	min := make(Point, r.Dims())
	max := make(Point, r.Dims())
	for i := range min {
		min[i] = maxU64(r.Min[i], s.Min[i])
		max[i] = minU64(r.Max[i], s.Max[i])
	}
	return Rect{Min: min, Max: max}, true
}

// Equal reports whether r and s are the same rectangle.
func (r Rect) Equal(s Rect) bool {
	return r.Min.Equal(s.Min) && r.Max.Equal(s.Max)
}

// String renders the rectangle as "[min .. max]".
func (r Rect) String() string {
	return fmt.Sprintf("[%s .. %s]", r.Min, r.Max)
}

// LogVolume returns the base-2 logarithm of the rectangle's volume measured
// in units where each dimension spans [0, 2^64). It is useful for comparing
// region sizes without overflow.
func (r Rect) LogVolume() float64 {
	v := 0.0
	for i := range r.Min {
		side := float64(r.Max[i]-r.Min[i]) + 1
		v += math.Log2(side)
	}
	return v
}

// NormalizeFloat maps a float in [lo, hi] onto the full uint64 coordinate
// domain. Values outside the interval are clamped. NaN maps to 0.
func NormalizeFloat(v, lo, hi float64) uint64 {
	if math.IsNaN(v) || hi <= lo {
		return 0
	}
	if v <= lo {
		return 0
	}
	if v >= hi {
		return math.MaxUint64
	}
	frac := (v - lo) / (hi - lo)
	// Scale by 2^64 via 2^63*2 to stay within float64 precision limits.
	u := frac * (1 << 63) * 2
	if u >= math.MaxUint64 {
		return math.MaxUint64
	}
	return uint64(u)
}

// DenormalizeFloat is the approximate inverse of NormalizeFloat.
func DenormalizeFloat(u uint64, lo, hi float64) float64 {
	frac := float64(u) / ((1 << 63) * 2)
	return lo + frac*(hi-lo)
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
