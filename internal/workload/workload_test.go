package workload

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	for _, k := range Kinds() {
		a, err := Generate(k, 3, 500, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := Generate(k, 3, 500, 42)
		for i := range a {
			if !a[i].Equal(b[i]) {
				t.Fatalf("%s: run differs at %d", k, i)
			}
		}
		c, _ := Generate(k, 3, 500, 43)
		same := 0
		for i := range a {
			if a[i].Equal(c[i]) {
				same++
			}
		}
		if same > 5 {
			t.Fatalf("%s: different seeds nearly identical (%d/500 equal)", k, same)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Uniform, 0, 10, 1); err == nil {
		t.Fatal("dims 0 accepted")
	}
	if _, err := Generate(Kind("nope"), 2, 10, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Generate(Uniform, 2, -1, 1); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestShapes(t *testing.T) {
	for _, k := range Kinds() {
		pts, err := Generate(k, 4, 1000, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != 1000 {
			t.Fatalf("%s: %d points", k, len(pts))
		}
		for _, p := range pts {
			if len(p) != 4 {
				t.Fatalf("%s: point with %d dims", k, len(p))
			}
		}
	}
}

func TestSkewedIsSkewed(t *testing.T) {
	pts, _ := Generate(Skewed, 1, 5000, 3)
	low := 0
	for _, p := range pts {
		if p[0] < math.MaxUint64/2 {
			low++
		}
	}
	if float64(low)/5000 < 0.80 {
		t.Fatalf("skewed distribution not skewed: %d/5000 in lower half", low)
	}
}

func TestDiagonalIsCorrelated(t *testing.T) {
	pts, _ := Generate(Diagonal, 2, 2000, 5)
	near := 0
	for _, p := range pts {
		d := int64(p[0] - p[1])
		if d < 0 {
			d = -d
		}
		if uint64(d) < 1<<50 {
			near++
		}
	}
	if float64(near)/2000 < 0.95 {
		t.Fatalf("diagonal points not near diagonal: %d/2000", near)
	}
}

func TestNestedHasMultipleScales(t *testing.T) {
	pts, _ := Generate(Nested, 2, 5000, 9)
	// Pairwise distances must span many orders of magnitude.
	src := NewSource(1)
	minD, maxD := math.MaxFloat64, 0.0
	for i := 0; i < 2000; i++ {
		a := pts[src.Intn(len(pts))]
		b := pts[src.Intn(len(pts))]
		if a.Equal(b) {
			continue
		}
		dx := float64(a[0]) - float64(b[0])
		dy := float64(a[1]) - float64(b[1])
		d := math.Hypot(dx, dy)
		if d > 0 {
			if d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
		}
	}
	if maxD/minD < 1e6 {
		t.Fatalf("nested scales span only %.1e", maxD/minD)
	}
}

func TestQueryRects(t *testing.T) {
	rects := QueryRects(3, 50, 0.1, 11)
	if len(rects) != 50 {
		t.Fatal("count")
	}
	for _, r := range rects {
		for d := 0; d < 3; d++ {
			if r.Max[d] < r.Min[d] {
				t.Fatal("inverted rect")
			}
			side := float64(r.Max[d] - r.Min[d])
			if math.Abs(side/math.MaxUint64-0.1) > 0.01 {
				t.Fatalf("side fraction %f", side/math.MaxUint64)
			}
		}
	}
}

func TestPartialMatchSpecs(t *testing.T) {
	specs := PartialMatchSpecs(4, 2)
	if len(specs) != 6 {
		t.Fatalf("C(4,2) = %d", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		n := 0
		key := ""
		for _, b := range s {
			if b {
				n++
				key += "1"
			} else {
				key += "0"
			}
		}
		if n != 2 {
			t.Fatalf("mask %v has %d set", s, n)
		}
		if seen[key] {
			t.Fatalf("duplicate mask %s", key)
		}
		seen[key] = true
	}
}

func TestSourceBasics(t *testing.T) {
	s := NewSource(1)
	for i := 0; i < 1000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %v", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}
