package workload

import "bvtree/internal/geometry"

// Bursts is the adversarial ingest schedule for the snapshot/backup
// experiments: it deals a generated point stream into bursts whose sizes
// follow a heavy-tailed distribution around meanBurst (most bursts are
// small, but roughly one in eight is up to ~8× the mean). A writer
// commits each burst back-to-back with no think time, so sooner or later
// a large burst lands entirely inside a checkpoint or backup window —
// exactly the arrival pattern that exposes writer stalls a uniform
// open-loop stream would average away. The schedule is deterministic for
// a given seed, like every generator in this package.
func Bursts(kind Kind, dims, total, meanBurst int, seed uint64) ([][]geometry.Point, error) {
	pts, err := Generate(kind, dims, total, seed)
	if err != nil {
		return nil, err
	}
	if meanBurst < 1 {
		meanBurst = 1
	}
	src := NewSource(seed ^ 0xB0B5)
	var out [][]geometry.Point
	for off := 0; off < total; {
		// Base size uniform in [1, meanBurst]; every eighth draw is
		// stretched by a uniform factor up to 8× — a crude but
		// deterministic heavy tail.
		n := 1 + src.Intn(meanBurst)
		if src.Intn(8) == 0 {
			n *= 1 + src.Intn(8)
		}
		if off+n > total {
			n = total - off
		}
		out = append(out, pts[off:off+n])
		off += n
	}
	return out, nil
}
