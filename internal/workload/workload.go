// Package workload provides deterministic, seeded point and query
// generators for the experiments. All generators are reproducible across
// runs and Go versions (they use a local splitmix64 source, not
// math/rand).
package workload

import (
	"fmt"
	"math"

	"bvtree/internal/geometry"
)

// Source is a splitmix64 pseudo-random source.
type Source struct {
	state uint64
}

// NewSource returns a deterministic source for the given seed.
func NewSource(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next pseudo-random value.
func (s *Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a value in [0, n).
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive bound")
	}
	return int(s.Uint64() % uint64(n))
}

// NormFloat64 returns an approximately standard normal value
// (Box–Muller).
func (s *Source) NormFloat64() float64 {
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Kind names a point distribution.
type Kind string

// Distributions used across the experiments.
const (
	// Uniform spreads points independently and uniformly.
	Uniform Kind = "uniform"
	// Clustered draws points from a fixed number of gaussian clusters of
	// varying scale — typical of geographic and measurement data.
	Clustered Kind = "clustered"
	// Skewed concentrates mass towards the origin with a power law per
	// dimension.
	Skewed Kind = "skewed"
	// Diagonal places points near the main diagonal (highly correlated
	// attributes).
	Diagonal Kind = "diagonal"
	// Nested is the adversarial distribution: clusters nested inside
	// clusters at geometrically shrinking scales, which maximises region
	// enclosure and therefore guard promotion in the BV-tree and forced
	// splitting in the K-D-B tree and BANG file.
	Nested Kind = "nested"
)

// Kinds lists all distributions.
func Kinds() []Kind { return []Kind{Uniform, Clustered, Skewed, Diagonal, Nested} }

// Generate returns n dims-dimensional points drawn from the distribution.
func Generate(kind Kind, dims, n int, seed uint64) ([]geometry.Point, error) {
	if dims < 1 || dims > geometry.MaxDims {
		return nil, fmt.Errorf("workload: dims %d out of range", dims)
	}
	if n < 0 {
		return nil, fmt.Errorf("workload: negative count")
	}
	src := NewSource(seed)
	out := make([]geometry.Point, n)
	switch kind {
	case Uniform:
		for i := range out {
			p := make(geometry.Point, dims)
			for d := range p {
				p[d] = src.Uint64()
			}
			out[i] = p
		}
	case Clustered:
		const clusters = 16
		centers := make([]geometry.Point, clusters)
		scales := make([]float64, clusters)
		for c := range centers {
			centers[c] = make(geometry.Point, dims)
			for d := range centers[c] {
				centers[c][d] = src.Uint64()
			}
			// Spread cluster radii over ~6 orders of magnitude.
			scales[c] = math.Pow(2, 40+src.Float64()*20)
		}
		for i := range out {
			c := src.Intn(clusters)
			p := make(geometry.Point, dims)
			for d := range p {
				off := int64(src.NormFloat64() * scales[c])
				p[d] = centers[c][d] + uint64(off)
			}
			out[i] = p
		}
	case Skewed:
		for i := range out {
			p := make(geometry.Point, dims)
			for d := range p {
				// x^4 concentrates ~84% of the mass in the lowest half of
				// the domain per dimension and ~18% in the lowest 1/64.
				f := src.Float64()
				f = f * f * f * f
				p[d] = uint64(f * math.MaxUint64)
			}
			out[i] = p
		}
	case Diagonal:
		for i := range out {
			base := src.Uint64()
			p := make(geometry.Point, dims)
			for d := range p {
				off := int64(src.NormFloat64() * float64(1<<44))
				p[d] = base + uint64(off)
			}
			out[i] = p
		}
	case Nested:
		// A chain of nested cluster centres: level k has scale 2^(60-4k).
		const depth = 14
		centers := make([]geometry.Point, depth)
		cur := make(geometry.Point, dims)
		for d := range cur {
			cur[d] = src.Uint64()
		}
		for k := 0; k < depth; k++ {
			centers[k] = cur.Clone()
			next := cur.Clone()
			for d := range next {
				shift := 60 - 4*k
				if shift < 2 {
					shift = 2
				}
				next[d] += src.Uint64() >> uint(64-shift+1)
			}
			cur = next
		}
		for i := range out {
			k := src.Intn(depth)
			scale := 60 - 4*k
			if scale < 2 {
				scale = 2
			}
			p := make(geometry.Point, dims)
			for d := range p {
				p[d] = centers[k][d] + src.Uint64()>>uint(64-scale)
			}
			out[i] = p
		}
	default:
		return nil, fmt.Errorf("workload: unknown distribution %q", kind)
	}
	return out, nil
}

// QueryRects returns n query rectangles whose side length is the given
// fraction of the domain in every dimension, centred uniformly at random.
func QueryRects(dims, n int, sideFrac float64, seed uint64) []geometry.Rect {
	src := NewSource(seed)
	side := uint64(sideFrac * math.MaxUint64)
	out := make([]geometry.Rect, n)
	for i := range out {
		min := make(geometry.Point, dims)
		max := make(geometry.Point, dims)
		for d := 0; d < dims; d++ {
			lo := src.Uint64()
			if lo > math.MaxUint64-side {
				lo = math.MaxUint64 - side
			}
			min[d] = lo
			max[d] = lo + side
		}
		out[i] = geometry.Rect{Min: min, Max: max}
	}
	return out
}

// PartialMatchSpecs enumerates all ways of specifying m of dims
// attributes. Each returned mask has exactly m true entries.
func PartialMatchSpecs(dims, m int) [][]bool {
	var out [][]bool
	mask := make([]bool, dims)
	var rec func(start, left int)
	rec = func(start, left int) {
		if left == 0 {
			out = append(out, append([]bool(nil), mask...))
			return
		}
		for i := start; i <= dims-left; i++ {
			mask[i] = true
			rec(i+1, left-1)
			mask[i] = false
		}
	}
	rec(0, m)
	return out
}
