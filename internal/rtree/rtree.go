// Package rtree implements Guttman's R-tree [Gut84] with quadratic-split,
// the classic index for extended spatial objects (rectangles). The paper
// cites its unpredictable worst-case behaviour — overlapping directory
// regions force multi-path searches — as the motivation for building a
// dual-representation object index on the BV-tree instead (§8, [Fre89b]).
// This implementation is the comparison baseline for that extension: it
// counts the nodes every query has to visit, which grows with directory
// overlap.
package rtree

import (
	"fmt"
	"math"

	"bvtree/internal/geometry"
)

// Entry is a stored rectangle with an opaque payload.
type Entry struct {
	Rect    geometry.Rect
	Payload uint64
}

// Tree is an R-tree over n-dimensional rectangles.
type Tree struct {
	dims     int
	min, max int // min/max entries per node
	root     *node
	height   int
	size     int
	accesses uint64
}

type node struct {
	leaf     bool
	rects    []geometry.Rect
	payloads []uint64 // leaf
	children []*node  // interior
}

// Options configures a Tree.
type Options struct {
	Dims int
	// MaxEntries per node (default 16); MinEntries defaults to
	// MaxEntries*2/5 (Guttman's m ≈ 40%).
	MaxEntries int
	MinEntries int
}

// New returns an empty R-tree.
func New(opt Options) (*Tree, error) {
	if opt.Dims < 1 || opt.Dims > geometry.MaxDims {
		return nil, fmt.Errorf("rtree: dims %d out of range", opt.Dims)
	}
	if opt.MaxEntries == 0 {
		opt.MaxEntries = 16
	}
	if opt.MaxEntries < 4 {
		return nil, fmt.Errorf("rtree: MaxEntries %d below minimum 4", opt.MaxEntries)
	}
	if opt.MinEntries == 0 {
		opt.MinEntries = opt.MaxEntries * 2 / 5
	}
	if opt.MinEntries < 1 || opt.MinEntries > opt.MaxEntries/2 {
		return nil, fmt.Errorf("rtree: MinEntries %d invalid for MaxEntries %d", opt.MinEntries, opt.MaxEntries)
	}
	return &Tree{dims: opt.Dims, min: opt.MinEntries, max: opt.MaxEntries, root: &node{leaf: true}}, nil
}

// Len returns the number of stored rectangles.
func (t *Tree) Len() int { return t.size }

// Height returns the number of directory levels above the leaves.
func (t *Tree) Height() int { return t.height }

// NodeAccesses returns cumulative node visits.
func (t *Tree) NodeAccesses() uint64 { return t.accesses }

// ResetAccesses zeroes the access counter and returns the prior value.
func (t *Tree) ResetAccesses() uint64 {
	v := t.accesses
	t.accesses = 0
	return v
}

// Insert stores a rectangle.
func (t *Tree) Insert(r geometry.Rect, payload uint64) error {
	if r.Dims() != t.dims {
		return fmt.Errorf("rtree: rect has %d dims, tree has %d", r.Dims(), t.dims)
	}
	l, rr := t.insert(t.root, r.Clone(), payload)
	if rr != nil {
		t.root = &node{
			rects:    []geometry.Rect{mbr(l), mbr(rr)},
			children: []*node{l, rr},
		}
		t.height++
	}
	t.size++
	return nil
}

// insert returns replacement siblings when n split (first is n itself
// restructured).
func (t *Tree) insert(n *node, r geometry.Rect, payload uint64) (*node, *node) {
	t.accesses++
	if n.leaf {
		n.rects = append(n.rects, r)
		n.payloads = append(n.payloads, payload)
		if len(n.rects) <= t.max {
			return n, nil
		}
		return t.splitNode(n)
	}
	ci := t.chooseSubtree(n, r)
	l, rr := t.insert(n.children[ci], r, payload)
	n.rects[ci] = mbr(l)
	n.children[ci] = l
	if rr != nil {
		n.rects = append(n.rects, mbr(rr))
		n.children = append(n.children, rr)
	}
	if len(n.children) <= t.max {
		return n, nil
	}
	return t.splitNode(n)
}

// chooseSubtree picks the child needing least enlargement (ties: smallest
// area) — Guttman's ChooseLeaf criterion.
func (t *Tree) chooseSubtree(n *node, r geometry.Rect) int {
	best, bestEnl, bestArea := 0, math.Inf(1), math.Inf(1)
	for i := range n.rects {
		area := volume(n.rects[i])
		enl := volume(union(n.rects[i], r)) - area
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// splitNode implements the quadratic split: pick the pair of entries that
// would waste the most area together as seeds, then assign the rest by
// least enlargement, respecting the minimum fill.
func (t *Tree) splitNode(n *node) (*node, *node) {
	count := len(n.rects)
	// Seeds.
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < count; i++ {
		for j := i + 1; j < count; j++ {
			d := volume(union(n.rects[i], n.rects[j])) - volume(n.rects[i]) - volume(n.rects[j])
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	a := &node{leaf: n.leaf}
	b := &node{leaf: n.leaf}
	assign := func(dst *node, i int) {
		dst.rects = append(dst.rects, n.rects[i])
		if n.leaf {
			dst.payloads = append(dst.payloads, n.payloads[i])
		} else {
			dst.children = append(dst.children, n.children[i])
		}
	}
	assign(a, s1)
	assign(b, s2)
	ra, rb := n.rects[s1].Clone(), n.rects[s2].Clone()
	for i := 0; i < count; i++ {
		if i == s1 || i == s2 {
			continue
		}
		remaining := count - i // pessimistic but sufficient for min-fill
		switch {
		case len(a.rects)+remaining <= t.min+1:
			assign(a, i)
			ra = union(ra, n.rects[i])
		case len(b.rects)+remaining <= t.min+1:
			assign(b, i)
			rb = union(rb, n.rects[i])
		default:
			enlA := volume(union(ra, n.rects[i])) - volume(ra)
			enlB := volume(union(rb, n.rects[i])) - volume(rb)
			if enlA < enlB || (enlA == enlB && len(a.rects) <= len(b.rects)) {
				assign(a, i)
				ra = union(ra, n.rects[i])
			} else {
				assign(b, i)
				rb = union(rb, n.rects[i])
			}
		}
	}
	return a, b
}

// SearchIntersects invokes visit for every stored rectangle intersecting q.
func (t *Tree) SearchIntersects(q geometry.Rect, visit func(geometry.Rect, uint64) bool) error {
	if q.Dims() != t.dims {
		return fmt.Errorf("rtree: query dims mismatch")
	}
	t.search(t.root, q, visit)
	return nil
}

func (t *Tree) search(n *node, q geometry.Rect, visit func(geometry.Rect, uint64) bool) bool {
	t.accesses++
	if n.leaf {
		for i := range n.rects {
			if n.rects[i].Intersects(q) {
				if !visit(n.rects[i], n.payloads[i]) {
					return false
				}
			}
		}
		return true
	}
	for i := range n.rects {
		if n.rects[i].Intersects(q) {
			if !t.search(n.children[i], q, visit) {
				return false
			}
		}
	}
	return true
}

// CountIntersects returns the number of stored rectangles intersecting q.
func (t *Tree) CountIntersects(q geometry.Rect) (int, error) {
	n := 0
	err := t.SearchIntersects(q, func(geometry.Rect, uint64) bool { n++; return true })
	return n, err
}

// Delete removes one rectangle equal to r with the given payload. Guttman
// deletion with reinsertion of orphaned entries.
func (t *Tree) Delete(r geometry.Rect, payload uint64) (bool, error) {
	if r.Dims() != t.dims {
		return false, fmt.Errorf("rtree: rect dims mismatch")
	}
	var orphans []Entry
	ok := t.remove(t.root, r, payload, &orphans)
	if !ok {
		return false, nil
	}
	t.size--
	// Shrink the root.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.height--
	}
	for _, o := range orphans {
		t.size-- // Insert will re-increment
		if err := t.Insert(o.Rect, o.Payload); err != nil {
			return false, err
		}
	}
	return true, nil
}

func (t *Tree) remove(n *node, r geometry.Rect, payload uint64, orphans *[]Entry) bool {
	t.accesses++
	if n.leaf {
		for i := range n.rects {
			if n.payloads[i] == payload && n.rects[i].Equal(r) {
				n.rects = append(n.rects[:i], n.rects[i+1:]...)
				n.payloads = append(n.payloads[:i], n.payloads[i+1:]...)
				return true
			}
		}
		return false
	}
	for i := range n.children {
		if !n.rects[i].Intersects(r) {
			continue
		}
		if t.remove(n.children[i], r, payload, orphans) {
			c := n.children[i]
			size := len(c.rects)
			if size < t.min {
				// Condense: orphan the undersized child's entries.
				collectEntries(c, orphans)
				n.rects = append(n.rects[:i], n.rects[i+1:]...)
				n.children = append(n.children[:i], n.children[i+1:]...)
			} else {
				n.rects[i] = mbr(c)
			}
			return true
		}
	}
	return false
}

func collectEntries(n *node, out *[]Entry) {
	if n.leaf {
		for i := range n.rects {
			*out = append(*out, Entry{Rect: n.rects[i], Payload: n.payloads[i]})
		}
		return
	}
	for _, c := range n.children {
		collectEntries(c, out)
	}
}

// OverlapFactor measures directory quality: the average number of
// children of each interior node that a random child rectangle overlaps
// beyond itself. Zero means a perfectly disjoint directory (which the
// R-tree cannot guarantee — the BV-tree's representation can).
func (t *Tree) OverlapFactor() float64 {
	pairs, overlapping := 0, 0
	var rec func(n *node)
	rec = func(n *node) {
		if n.leaf {
			return
		}
		for i := range n.rects {
			for j := i + 1; j < len(n.rects); j++ {
				pairs++
				if n.rects[i].Intersects(n.rects[j]) {
					overlapping++
				}
			}
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
	if pairs == 0 {
		return 0
	}
	return float64(overlapping) / float64(pairs)
}

// Validate checks structural invariants: bounding rectangles contain
// their subtrees, uniform leaf depth, and the entry count.
func (t *Tree) Validate() error {
	count := 0
	var rec func(n *node, depth int) (geometry.Rect, error)
	rec = func(n *node, depth int) (geometry.Rect, error) {
		if n.leaf {
			if depth != t.height {
				return geometry.Rect{}, fmt.Errorf("rtree: leaf at depth %d, height %d", depth, t.height)
			}
			count += len(n.rects)
			return mbr(n), nil
		}
		if len(n.children) != len(n.rects) {
			return geometry.Rect{}, fmt.Errorf("rtree: rect/child count mismatch")
		}
		for i, c := range n.children {
			sub, err := rec(c, depth+1)
			if err != nil {
				return geometry.Rect{}, err
			}
			if !n.rects[i].ContainsRect(sub) {
				return geometry.Rect{}, fmt.Errorf("rtree: bounding rect does not contain subtree")
			}
		}
		return mbr(n), nil
	}
	if _, err := rec(t.root, 0); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: walked %d entries, size %d", count, t.size)
	}
	return nil
}

// --- geometry helpers ---

func union(a, b geometry.Rect) geometry.Rect {
	out := a.Clone()
	for d := range out.Min {
		if b.Min[d] < out.Min[d] {
			out.Min[d] = b.Min[d]
		}
		if b.Max[d] > out.Max[d] {
			out.Max[d] = b.Max[d]
		}
	}
	return out
}

// volume returns the log-scaled volume used for enlargement comparisons
// (linear volumes overflow float64 in a 2^64 domain).
func volume(r geometry.Rect) float64 {
	return r.LogVolume()
}

func mbr(n *node) geometry.Rect {
	out := n.rects[0].Clone()
	for _, r := range n.rects[1:] {
		out = union(out, r)
	}
	return out
}
