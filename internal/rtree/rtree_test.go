package rtree

import (
	"math/rand"
	"testing"

	"bvtree/internal/geometry"
)

func randRect(rng *rand.Rand, dims int, maxSide uint64) geometry.Rect {
	min := make(geometry.Point, dims)
	max := make(geometry.Point, dims)
	for d := 0; d < dims; d++ {
		lo := rng.Uint64()
		side := rng.Uint64() % maxSide
		if lo > ^uint64(0)-side {
			lo = ^uint64(0) - side
		}
		min[d], max[d] = lo, lo+side
	}
	return geometry.Rect{Min: min, Max: max}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Dims: 0}); err == nil {
		t.Fatal("dims 0 accepted")
	}
	if _, err := New(Options{Dims: 2, MaxEntries: 2}); err == nil {
		t.Fatal("max 2 accepted")
	}
	if _, err := New(Options{Dims: 2, MaxEntries: 8, MinEntries: 7}); err == nil {
		t.Fatal("min > max/2 accepted")
	}
}

func TestInsertSearchAgainstBruteForce(t *testing.T) {
	tr, err := New(Options{Dims: 2, MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var rects []geometry.Rect
	for i := 0; i < 3000; i++ {
		r := randRect(rng, 2, 1<<48)
		rects = append(rects, r)
		if err := tr.Insert(r, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		q := randRect(rng, 2, 1<<56)
		want := 0
		for _, r := range rects {
			if r.Intersects(q) {
				want++
			}
		}
		got, err := tr.CountIntersects(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: got %d want %d", trial, got, want)
		}
	}
}

func TestDeleteAgainstModel(t *testing.T) {
	tr, _ := New(Options{Dims: 2, MaxEntries: 6})
	rng := rand.New(rand.NewSource(2))
	type rec struct {
		r  geometry.Rect
		id uint64
	}
	var live []rec
	nextID := uint64(0)
	for op := 0; op < 4000; op++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			r := randRect(rng, 2, 1<<50)
			if err := tr.Insert(r, nextID); err != nil {
				t.Fatal(err)
			}
			live = append(live, rec{r, nextID})
			nextID++
		} else {
			i := rng.Intn(len(live))
			ok, err := tr.Delete(live[i].r, live[i].id)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("op %d: delete of live rect failed", op)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if op%500 == 499 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if tr.Len() != len(live) {
				t.Fatalf("op %d: len %d want %d", op, tr.Len(), len(live))
			}
		}
	}
	// All live rects findable.
	for _, rc := range live {
		found := false
		err := tr.SearchIntersects(rc.r, func(r geometry.Rect, id uint64) bool {
			if id == rc.id && r.Equal(rc.r) {
				found = true
				return false
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("live rect %d missing", rc.id)
		}
	}
	if ok, _ := tr.Delete(randRect(rng, 2, 4), 999999); ok {
		t.Fatal("delete of absent rect succeeded")
	}
}

func TestOverlapFactorNonzeroOnClutter(t *testing.T) {
	tr, _ := New(Options{Dims: 2, MaxEntries: 8})
	rng := rand.New(rand.NewSource(3))
	// Large overlapping rectangles force directory overlap.
	for i := 0; i < 2000; i++ {
		if err := tr.Insert(randRect(rng, 2, 1<<60), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.OverlapFactor() == 0 {
		t.Fatal("expected directory overlap with large random rectangles")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAccessCounting(t *testing.T) {
	tr, _ := New(Options{Dims: 2, MaxEntries: 8})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		_ = tr.Insert(randRect(rng, 2, 1<<40), uint64(i))
	}
	tr.ResetAccesses()
	_, _ = tr.CountIntersects(randRect(rng, 2, 1<<40))
	if tr.NodeAccesses() == 0 {
		t.Fatal("no accesses counted")
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	tr, _ := New(Options{Dims: 2, MaxEntries: 16})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		_ = tr.Insert(randRect(rng, 2, 1<<32), uint64(i))
	}
	if tr.Height() > 6 {
		t.Fatalf("height %d too large for 20k entries at fan-out 16", tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
