package bvtree_test

import (
	"fmt"
	"os"
	"path/filepath"

	"bvtree"
)

// ExampleNew builds an in-memory 2-D tree and runs the three core
// queries: exact match, range, and nearest neighbour.
func ExampleNew() {
	tr, err := bvtree.New(bvtree.Options{Dims: 2})
	if err != nil {
		panic(err)
	}
	for i := uint64(0); i < 100; i++ {
		// Coordinates are uint64 over the full domain; spread the points
		// on a diagonal band for a deterministic little data set.
		if err := tr.Insert(bvtree.Point{i << 56, (i * 3) << 54}, i); err != nil {
			panic(err)
		}
	}

	ids, _ := tr.Lookup(bvtree.Point{7 << 56, 21 << 54})
	fmt.Println("exact match:", ids)

	rect, _ := bvtree.NewRect(bvtree.Point{0, 0}, bvtree.Point{10 << 56, ^uint64(0)})
	n := 0
	tr.RangeQuery(rect, func(bvtree.Point, uint64) bool { n++; return true })
	fmt.Println("points with x <= 10:", n)

	nn, _ := tr.Nearest(bvtree.Point{7 << 56, 21 << 54}, 3)
	fmt.Println("3 nearest payloads:", nn[0].Payload, nn[1].Payload, nn[2].Payload)
	// Output:
	// exact match: [7]
	// points with x <= 10: 11
	// 3 nearest payloads: 7 6 8
}

// ExampleTree_Metrics turns the opt-in histograms on and reads the
// snapshot back. The counts are exact; the latency quantiles (not
// printed here — they depend on the machine) live in the same snapshot.
func ExampleTree_Metrics() {
	tr, err := bvtree.New(bvtree.Options{Dims: 2, Metrics: true})
	if err != nil {
		panic(err)
	}
	for i := uint64(0); i < 500; i++ {
		if err := tr.Insert(bvtree.Point{i << 48, i << 48}, i); err != nil {
			panic(err)
		}
	}
	for i := uint64(0); i < 200; i++ {
		if _, err := tr.Lookup(bvtree.Point{i << 48, i << 48}); err != nil {
			panic(err)
		}
	}

	s := tr.Metrics() // a bvtree.MetricsSnapshot; marshals to JSON as-is
	fmt.Println("metrics enabled:", s.Tree.MetricsEnabled)
	fmt.Println("inserts recorded:", s.Tree.InsertNs.Count)
	fmt.Println("lookups recorded:", s.Tree.LookupNs.Count)
	fmt.Println("lookup p99 > 0:", s.Tree.LookupNs.P99 > 0)
	fmt.Println("splits seen:", s.Tree.Counters.DataSplits > 0)
	// Output:
	// metrics enabled: true
	// inserts recorded: 500
	// lookups recorded: 200
	// lookup p99 > 0: true
	// splits seen: true
}

// ExampleDurableTree_recovery shows crash recovery: a durable tree is
// abandoned without Close or Checkpoint (the "crash"), and reopening
// the same store and log replays every acknowledged operation.
func ExampleDurableTree_recovery() {
	dir, err := os.MkdirTemp("", "bvtree-example-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	db, wal := filepath.Join(dir, "points.db"), filepath.Join(dir, "points.wal")

	// PinDirty keeps the store file at the last checkpoint; between
	// checkpoints, durability comes from the log alone.
	st, err := bvtree.NewFileStore(db, bvtree.FileStoreOptions{PinDirty: true})
	if err != nil {
		panic(err)
	}
	d, err := bvtree.NewDurable(st, wal, bvtree.Options{Dims: 2})
	if err != nil {
		panic(err)
	}
	for i := uint64(0); i < 10; i++ {
		if err := d.Insert(bvtree.Point{i, i}, i); err != nil {
			panic(err)
		}
	}
	// Crash: no Checkpoint, no Close — the store file never saw these
	// inserts, only the fsynced log did.

	st2, err := bvtree.OpenFileStore(db, bvtree.FileStoreOptions{PinDirty: true})
	if err != nil {
		panic(err)
	}
	recovered, err := bvtree.OpenDurable(st2, wal, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("items after recovery:", recovered.Len())
	ids, _ := recovered.Lookup(bvtree.Point{7, 7})
	fmt.Println("payload at (7,7):", ids)
	if err := recovered.Close(); err != nil {
		panic(err)
	}
	st2.Close()
	// Output:
	// items after recovery: 10
	// payload at (7,7): [7]
}
