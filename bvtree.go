// Package bvtree is a Go implementation of the BV-tree, the
// n-dimensional generalisation of the B-tree introduced by Michael
// Freeston in "A General Solution of the n-dimensional B-tree Problem"
// (SIGMOD 1995).
//
// The BV-tree indexes points on n attributes symmetrically — a partial
// match on any m of the n attributes costs the same whichever attributes
// are specified — while preserving the B-tree's defining guarantees as
// far as is topologically possible: exact-match search and update visit a
// logarithmic number of nodes (exactly one node per partition level), and
// every data and index node is kept at least one-third full. It achieves
// this with a deliberately unbalanced index over a balanced recursive
// binary partitioning of the data space: entries that a directory split
// would cut through are promoted upwards as guards instead of being
// split, and searches carry a per-level guard set down the tree.
//
// # Quick start
//
//	tr, err := bvtree.New(bvtree.Options{Dims: 2})
//	if err != nil { ... }
//	_ = tr.Insert(bvtree.Point{x, y}, recordID)
//	payloads, _ := tr.Lookup(bvtree.Point{x, y})
//	_ = tr.RangeQuery(rect, func(p bvtree.Point, id uint64) bool { ...; return true })
//
// Coordinates are uint64 values covering the full domain; use
// NormalizeFloat to map floating-point attributes into it. For a
// disk-backed tree, create a storage.FileStore and use NewPaged.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every table and figure in the paper.
package bvtree

import (
	"io"

	ibv "bvtree/internal/bvtree"
	"bvtree/internal/geometry"
	"bvtree/internal/obs"
	"bvtree/internal/storage"
	"bvtree/internal/wal"
)

// Point is an n-dimensional point with uint64 coordinates.
type Point = geometry.Point

// Rect is a closed axis-aligned query rectangle.
type Rect = geometry.Rect

// Tree is a BV-tree. It is safe for concurrent use under a
// reader–writer contract with multi-version reads: point reads (Lookup,
// Stats, …) share a lock, traversal reads (RangeQuery, Nearest, Scan,
// Count, …) pin an epoch and run lock-free against an immutable
// copy-on-write view — a slow visitor never blocks a writer — and
// mutations (Insert, Delete, Maintain, Flush) are exclusive. Snapshot
// exposes the same pinned views explicitly. See DESIGN.md §8 and §12
// for the full concurrency model.
type Tree = ibv.Tree

// Options configures a Tree; see the field documentation in the
// implementation package.
type Options = ibv.Options

// OpStats are the structural event counters of a Tree. They are a view
// over the same counters (*Tree).Metrics reports in its Tree.Counters
// section, so the two APIs can never disagree.
type OpStats = ibv.OpStats

// MetricsSnapshot is the combined observability snapshot returned by
// (*Tree).Metrics and (*DurableTree).Metrics: structural counters and
// opt-in latency/shape histograms for the tree layer, page-store counters
// for paged trees, and WAL write-path histograms for durable trees. It is
// plain data and marshals to JSON; see README.md ("Reading the metrics")
// for how each section maps onto the paper's concepts.
type MetricsSnapshot = obs.Snapshot

// HistogramSnapshot summarises one latency or shape histogram: count,
// mean, and interpolated p50/p95/p99 (error ≤12.5% at any magnitude).
// Latency histograms are in nanoseconds.
type HistogramSnapshot = obs.HistogramSnapshot

// Tracer receives one TraceEvent per completed operation when installed
// with (*Tree).SetTracer. Implementations must be safe for concurrent
// use; a nil tracer (the default) costs the hot paths a single nil check.
type Tracer = obs.Tracer

// TraceEvent is one completed traced operation: which layer and op, how
// long it took, an op-specific magnitude, and whether it failed.
type TraceEvent = obs.Event

// CountingTracer is a ready-made Tracer that counts events and sums
// durations per layer — the cheapest possible hook, used by bvbench -obs
// to price tracing itself.
type CountingTracer = obs.CountingTracer

// Trace event layers and op codes.
const (
	LayerTree  = obs.LayerTree
	LayerWAL   = obs.LayerWAL
	LayerStore = obs.LayerStore
)

// TreeStats is a structural snapshot gathered by (*Tree).CollectStats.
type TreeStats = ibv.TreeStats

// Visitor receives query results; returning false stops the traversal.
type Visitor = ibv.Visitor

// Neighbor is one result of a Nearest search.
type Neighbor = ibv.Neighbor

// Store persists node blobs for paged trees; see NewFileStore.
type Store = storage.Store

// Snapshot is a pinned, immutable view of a Tree, obtained with
// (*Tree).Snapshot: every read through it observes exactly the state
// the tree had when the snapshot was taken, while writers keep
// committing (they copy superseded pages on demand). Release it when
// done so retained page versions can be reclaimed.
type Snapshot = ibv.Snapshot

// ErrCorrupt is returned by RestoreSnapshot and RestoreToLSN when a
// backup stream is damaged — truncated, bit-flipped, or structurally
// inconsistent. Classify with errors.Is.
var ErrCorrupt = ibv.ErrCorrupt

// FileStoreOptions configures a file-backed store.
type FileStoreOptions = storage.FileStoreOptions

// New returns an in-memory BV-tree.
func New(opt Options) (*Tree, error) { return ibv.New(opt) }

// NewPaged returns a BV-tree whose nodes are serialised into st. The
// store must be freshly created and is dedicated to the tree.
func NewPaged(st Store, opt Options) (*Tree, error) { return ibv.NewPaged(st, opt) }

// OpenPaged reopens a tree previously created with NewPaged and persisted
// with (*Tree).Flush.
func OpenPaged(st Store, cacheNodes int) (*Tree, error) { return ibv.OpenPaged(st, cacheNodes) }

// DurableTree is a paged tree with a logical write-ahead log. Mutations
// are group-committed: each is logged and applied, and acknowledged once
// its log batch is fsynced — concurrent writers share syncs, and
// InsertBatch/ApplyBatch amortise one sync over a whole batch.
// Checkpoint persists the tree and empties the log, and OpenDurable
// replays operations logged since the last checkpoint. Create the
// backing FileStore with PinDirty so the on-disk image only changes at
// checkpoints; crashes at any point — including mid-checkpoint, which
// the store's rollback journal undoes — recover every acknowledged
// operation. See DESIGN.md §7 for the failure model and §9 for the
// write path.
type DurableTree = ibv.DurableTree

// DurableOptions tunes the durable write path: WAL group commit and the
// background checkpointer. The zero value batches opportunistically and
// runs no background checkpointer.
type DurableOptions = ibv.DurableOptions

// CheckpointConfig triggers background checkpoints by log size and/or
// log age.
type CheckpointConfig = ibv.CheckpointConfig

// GroupConfig tunes WAL group commit (batch size cap, linger window,
// sync-per-op fallback).
type GroupConfig = wal.GroupConfig

// BatchOp is one operation of a DurableTree.ApplyBatch or
// Tree.ApplyBatch batch.
type BatchOp = ibv.BatchOp

// NewDurable creates a durable tree over a fresh store, logging to
// walPath.
func NewDurable(st Store, walPath string, opt Options) (*DurableTree, error) {
	return ibv.NewDurable(st, walPath, opt)
}

// NewDurableOpts is NewDurable with an explicit write-path
// configuration.
func NewDurableOpts(st Store, walPath string, opt Options, dopt DurableOptions) (*DurableTree, error) {
	return ibv.NewDurableOpts(st, walPath, opt, dopt)
}

// OpenDurable reopens a durable tree, replaying the write-ahead log onto
// the last checkpoint.
func OpenDurable(st Store, walPath string, cacheNodes int) (*DurableTree, error) {
	return ibv.OpenDurable(st, walPath, cacheNodes)
}

// OpenDurableOpts is OpenDurable with an explicit write-path
// configuration.
func OpenDurableOpts(st Store, walPath string, cacheNodes int, dopt DurableOptions) (*DurableTree, error) {
	return ibv.OpenDurableOpts(st, walPath, cacheNodes, dopt)
}

// RestoreSnapshot rebuilds a tree from a backup stream (written by
// (*Tree).SnapshotBackup or (*DurableTree).SnapshotBackup) into st,
// which must be a freshly created store. Damaged streams fail with
// ErrCorrupt — a restore never silently yields a shorter tree.
func RestoreSnapshot(st Store, r io.Reader) (*Tree, error) { return ibv.RestoreSnapshot(st, r) }

// RestoreToLSN is point-in-time restore: it rebuilds the backup into st
// and replays records from the write-ahead log l on top, stopping once
// the state is exactly "every operation through upToLSN".
func RestoreToLSN(st Store, backup io.Reader, l *wal.Log, upToLSN uint64) (*Tree, error) {
	return ibv.RestoreToLSN(st, backup, l, upToLSN)
}

// OpenWAL opens (or creates) a write-ahead log for use with
// RestoreToLSN. DurableTree manages its own log; this is only needed to
// hand an existing log file to a restore.
func OpenWAL(path string) (*wal.Log, error) { return wal.Open(path) }

// NewFileStore creates a file-backed page store at path (truncating any
// existing file), suitable for NewPaged.
func NewFileStore(path string, opts FileStoreOptions) (*storage.FileStore, error) {
	return storage.CreateFileStore(path, opts)
}

// OpenFileStore opens an existing file-backed page store.
func OpenFileStore(path string, opts FileStoreOptions) (*storage.FileStore, error) {
	return storage.OpenFileStore(path, opts)
}

// NewRect returns the rectangle spanning min..max, validating bounds.
func NewRect(min, max Point) (Rect, error) { return geometry.NewRect(min, max) }

// UniverseRect returns the rectangle covering the whole dims-dimensional
// domain.
func UniverseRect(dims int) Rect { return geometry.UniverseRect(dims) }

// NormalizeFloat maps v in [lo, hi] onto the uint64 coordinate domain.
func NormalizeFloat(v, lo, hi float64) uint64 { return geometry.NormalizeFloat(v, lo, hi) }

// DenormalizeFloat is the approximate inverse of NormalizeFloat.
func DenormalizeFloat(u uint64, lo, hi float64) float64 { return geometry.DenormalizeFloat(u, lo, hi) }
