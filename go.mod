module bvtree

go 1.22
