GO ?= go

.PHONY: verify race torture fuzz bench bench-write

# The standard verification gate: static checks, build, full test suite,
# and the concurrency stress subset under the race detector (the full
# -race run stays in the dedicated `race` target). The race smoke subset
# covers the reader/writer stress tests and the group-commit/batch write
# path (TestGroupCommit* in internal/wal, TestConcurrentBatch* in
# internal/bvtree).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race -run 'TestConcurrent|TestGroupCommit' ./internal/bvtree ./internal/storage ./internal/wal

# Full suite under the race detector, including the reader/writer stress
# tests (TestConcurrent*) added with the parallel read path.
race:
	$(GO) test -race ./...

# The crash-safety torture harness on its own, verbosely: sweeps injected
# crashes and bit-flips across every file operation of a scripted
# insert/delete/checkpoint workload (internal/fault + internal/bvtree).
torture:
	$(GO) test -run 'TestTorture|TestCrash|TestSyncCrashSweep' -v ./internal/bvtree ./internal/storage

# Coverage-guided fuzzing of WAL recovery.
fuzz:
	$(GO) test -fuzz=FuzzReplay -fuzztime=30s ./internal/wal

bench:
	$(GO) test -bench . -benchmem ./...

# Write-path throughput: durable insert rate under sync-per-op,
# group-commit and batched disciplines (8 writers against a file-backed
# store); regenerates BENCH_writepath.json.
bench-write:
	$(GO) run ./cmd/bvbench -writepath
