GO ?= go

.PHONY: verify race torture fuzz fuzz-restore fuzz-bulkload bench bench-write bench-range bench-snapshot bench-ingest bench-node bench-server backup obs docslint server

# The standard verification gate: static checks, build, full test suite
# (including the runnable godoc examples), the documentation lint (every
# ```go fence in README.md/DESIGN.md must still compile or parse), and
# the concurrency stress subset under the race detector (the full -race
# run stays in the dedicated `race` target). The race smoke subset
# covers the reader/writer stress tests, the group-commit/batch write
# path (TestGroupCommit* in internal/wal, TestConcurrentBatch* in
# internal/bvtree), the instrumentation path (TestConcurrentMetrics),
# the histogram core (TestConcurrentHistogram in internal/obs) and the
# parallel range-query engine (TestParallelRange* in internal/bvtree),
# the MVCC snapshot/backup differential tests (TestSnapshot* in
# internal/bvtree) and the write-buffer battery (TestBuffered* in
# internal/bvtree: the differential programs, the crash sweeps and the
# concurrent buffered-access stress) and the columnar node-layout smoke
# (TestColumnar* in internal/bvtree: concurrent batched reads against a
# writer driving gap appends and mirror rebuilds), and the sharded
# service (TestShard* in internal/shard: the N-shard-vs-single-tree
# differential programs, the scatter-gather cancellation tests and the
# multi-client wire-server stress). The docslint run covers README.md,
# DESIGN.md, PROTOCOL.md and EXPERIMENTS.md, including the annotated
# hex frame dumps.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) run ./cmd/docslint
	$(GO) test -race -run 'TestConcurrent|TestGroupCommit|TestParallelRange|TestSnapshot|TestBuffered|TestColumnar|TestShard' ./internal/bvtree ./internal/storage ./internal/wal ./internal/obs ./internal/shard

# Full suite under the race detector, including the reader/writer stress
# tests (TestConcurrent*) added with the parallel read path.
race:
	$(GO) test -race ./...

# The crash-safety torture harness on its own, verbosely: sweeps injected
# crashes and bit-flips across every file operation of a scripted
# insert/delete/checkpoint workload (internal/fault + internal/bvtree).
torture:
	$(GO) test -run 'TestTorture|TestCrash|TestSyncCrashSweep' -v ./internal/bvtree ./internal/storage

# Coverage-guided fuzzing of WAL recovery.
fuzz:
	$(GO) test -fuzz=FuzzReplay -fuzztime=30s ./internal/wal

# Coverage-guided fuzzing of backup-stream restore: arbitrary bytes must
# either restore to a tree passing the full invariant check or fail with
# ErrCorrupt — never panic, never yield a silently short tree.
fuzz-restore:
	$(GO) test -run '^$$' -fuzz=FuzzRestore -fuzztime=30s ./internal/bvtree

bench:
	$(GO) test -bench . -benchmem ./...

# Write-path throughput: durable insert rate under sync-per-op,
# group-commit and batched disciplines (8 writers against a file-backed
# store); regenerates BENCH_writepath.json.
bench-write:
	$(GO) run ./cmd/bvbench -writepath

# Range-query engine: serial walk vs the parallel engine at several
# worker counts across query selectivities, on a file-backed 500k-point
# tree; regenerates BENCH_rangequery.json. Rows where workers exceed
# GOMAXPROCS are flagged [saturated]. See DESIGN.md §11.
bench-range:
	$(GO) run ./cmd/bvbench -rangequery

# Online backup and point-in-time restore, exercised end to end: the
# snapshot differential tests, the backup/restore round-trip and
# crash-matrix sweeps, and the PITR tests.
backup:
	$(GO) test -run 'TestSnapshot|TestBackup|TestRestore|TestDurableLSN' -v ./internal/bvtree

# Online-backup writer-stall cost: bursty durable ingest alone, under
# continuous SnapshotBackup streams, and under alternating checkpoints
# and backups (insert p50/p95/p99 per phase); regenerates
# BENCH_snapshot.json. See DESIGN.md §12.
bench-snapshot:
	$(GO) run ./cmd/bvbench -snapshot -writers 4 -writer-ops 3000

# Write-optimized ingestion: durable single-writer load under per-op
# inserts, z-sorted batches, batches into a write-buffered tree, and the
# sampling-based parallel BulkLoad; regenerates BENCH_ingest.json.
# Parallel rows are flagged saturated when GOMAXPROCS < 2. See
# DESIGN.md §13.
bench-ingest:
	$(GO) run ./cmd/bvbench -ingest

# Columnar node layout: descent, range and nearest hot paths with the
# batched column predicates live vs forced onto the pre-columnar scalar
# scans (same in-memory tree workload, interleaved rounds, best-round
# floors); regenerates BENCH_nodelayout.json. See DESIGN.md §14.
bench-node:
	$(GO) run ./cmd/bvbench -nodelayout

# Coverage-guided fuzzing of the packed bulk loader: arbitrary byte-
# derived point sets must load into a tree that passes the full
# invariant check and scans back to exactly the input multiset.
fuzz-bulkload:
	$(GO) test -run '^$$' -fuzz=FuzzBulkLoad -fuzztime=30s ./internal/bvtree

# Observability overhead: per-op cost of Lookup/Insert with metrics and
# tracing off/on (budget: ≤5% per enabled op, 0 when off); regenerates
# BENCH_obs.json. See DESIGN.md §10 for the methodology.
obs:
	$(GO) run ./cmd/bvbench -obs

# Sharded server, end to end: wire protocol + per-connection executors +
# shard router + scatter-gather + per-shard durable trees under a
# closed-loop mixed load over loopback TCP, client-observed p50/p95/p99
# per op class; regenerates BENCH_server.json. Rows are flagged
# saturated when GOMAXPROCS < 2×connections (client and server share
# the cores). See DESIGN.md §15 and PROTOCOL.md.
bench-server:
	$(GO) run ./cmd/bvbench -server

# Run the sharded server on the default address (:9412) with a default
# data directory. First start samples a workload and writes the shard
# plan (plan.json); later starts recover every shard from its
# checkpoint + WAL and reject a changed -dims/-shards. See README.md
# "Running the server" and DESIGN.md §15.
server:
	$(GO) run ./cmd/bvserver -data ./bvserver-data

# The documentation lint on its own (also part of `verify`).
docslint:
	$(GO) run ./cmd/docslint
