GO ?= go

.PHONY: verify race torture fuzz bench

# The standard verification gate: static checks, build, full test suite.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# Full suite under the race detector.
race:
	$(GO) test -race ./...

# The crash-safety torture harness on its own, verbosely: sweeps injected
# crashes and bit-flips across every file operation of a scripted
# insert/delete/checkpoint workload (internal/fault + internal/bvtree).
torture:
	$(GO) test -run 'TestTorture|TestCrash|TestSyncCrashSweep' -v ./internal/bvtree ./internal/storage

# Coverage-guided fuzzing of WAL recovery.
fuzz:
	$(GO) test -fuzz=FuzzReplay -fuzztime=30s ./internal/wal

bench:
	$(GO) test -bench . -benchmem ./...
