// Benchmarks: one per table/figure of the paper (wrapping the experiment
// registry in internal/bench, so `go test -bench .` regenerates every
// artifact) plus per-operation micro-benchmarks of the BV-tree itself.
package bvtree_test

import (
	"io"
	"testing"

	"bvtree"
	"bvtree/internal/bench"
	"bvtree/internal/workload"
)

// benchExperiment runs a registered experiment once per iteration with
// output discarded; run cmd/bvbench to see the tables.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(id, io.Discard, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artifact (see DESIGN.md's experiment index).

func BenchmarkFig12KDBCascade(b *testing.B) { benchExperiment(b, "fig1-2") }
func BenchmarkFig13Spanning(b *testing.B)   { benchExperiment(b, "fig1-3") }
func BenchmarkEq19Model(b *testing.B)       { benchExperiment(b, "eq") }
func BenchmarkFig71(b *testing.B)           { benchExperiment(b, "fig7-1") }
func BenchmarkFig72(b *testing.B)           { benchExperiment(b, "fig7-2") }
func BenchmarkEq1018(b *testing.B)          { benchExperiment(b, "eq73") }
func BenchmarkTab73Capacity(b *testing.B)   { benchExperiment(b, "tab7-3") }
func BenchmarkEmpOccupancy(b *testing.B)    { benchExperiment(b, "emp-occ") }
func BenchmarkEmpSearchPath(b *testing.B)   { benchExperiment(b, "emp-path") }
func BenchmarkEmp1D(b *testing.B)           { benchExperiment(b, "emp-1d") }
func BenchmarkCmpInsert(b *testing.B)       { benchExperiment(b, "cmp-insert") }
func BenchmarkCmpQuery(b *testing.B)        { benchExperiment(b, "cmp-query") }
func BenchmarkAblPageSize(b *testing.B)     { benchExperiment(b, "abl-pagesize") }
func BenchmarkExtSpatial(b *testing.B)      { benchExperiment(b, "ext-spatial") }
func BenchmarkCmpSplitPolicy(b *testing.B)  { benchExperiment(b, "cmp-split-policy") }

// --- per-operation micro-benchmarks ---

func buildTree(b *testing.B, kind workload.Kind, n int) (*bvtree.Tree, []bvtree.Point) {
	b.Helper()
	pts, err := workload.Generate(kind, 2, n, 1)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := bvtree.New(bvtree.Options{Dims: 2, DataCapacity: 32, Fanout: 24})
	if err != nil {
		b.Fatal(err)
	}
	for i, p := range pts {
		if err := tr.Insert(p, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	return tr, pts
}

func BenchmarkInsertUniform(b *testing.B) {
	pts, err := workload.Generate(workload.Uniform, 2, b.N, 2)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := bvtree.New(bvtree.Options{Dims: 2, DataCapacity: 32, Fanout: 24})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(pts[i], uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertNested(b *testing.B) {
	pts, err := workload.Generate(workload.Nested, 2, b.N, 2)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := bvtree.New(bvtree.Options{Dims: 2, DataCapacity: 32, Fanout: 24})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(pts[i], uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	tr, pts := buildTree(b, workload.Clustered, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Lookup(pts[i%len(pts)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeQuery1pc(b *testing.B) {
	tr, _ := buildTree(b, workload.Clustered, 100000)
	rects := workload.QueryRects(2, 256, 0.01, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := tr.RangeQuery(rects[i%len(rects)], func(bvtree.Point, uint64) bool {
			n++
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelete(b *testing.B) {
	pts, err := workload.Generate(workload.Clustered, 2, b.N, 4)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := bvtree.New(bvtree.Options{Dims: 2, DataCapacity: 32, Fanout: 24})
	if err != nil {
		b.Fatal(err)
	}
	for i, p := range pts {
		if err := tr.Insert(p, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, err := tr.Delete(pts[i], uint64(i)); err != nil || !ok {
			b.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
}
