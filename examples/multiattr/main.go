// Multiattr: the paper's motivating workload — an index on n attributes
// of a relation that answers partial-match queries symmetrically. A
// four-attribute "orders" relation is indexed on (customer, product,
// region, day) and queried with every combination of two specified
// attributes; the per-combination node-access counts come out nearly
// identical, which is the symmetry a concatenated-key B-tree cannot give.
package main

import (
	"fmt"
	"log"

	"bvtree"
	"bvtree/internal/workload"
)

const (
	customers = 2000
	products  = 500
	regions   = 32
	days      = 365
)

func main() {
	tr, err := bvtree.New(bvtree.Options{Dims: 4, DataCapacity: 32, Fanout: 24})
	if err != nil {
		log.Fatal(err)
	}

	// Load one million synthetic order rows. Attribute values are spread
	// over the full uint64 domain so every attribute is indexed at full
	// resolution.
	src := workload.NewSource(7)
	const rows = 200000
	for i := 0; i < rows; i++ {
		p := bvtree.Point{
			uint64(src.Intn(customers)) << 48,
			uint64(src.Intn(products)) << 48,
			uint64(src.Intn(regions)) << 48,
			uint64(src.Intn(days)) << 48,
		}
		if err := tr.Insert(p, uint64(i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d orders on 4 attributes; height=%d\n\n", tr.Len(), tr.Height())

	names := []string{"customer", "product", "region", "day"}
	probe := bvtree.Point{
		uint64(src.Intn(customers)) << 48,
		uint64(src.Intn(products)) << 48,
		uint64(src.Intn(regions)) << 48,
		uint64(src.Intn(days)) << 48,
	}

	fmt.Println("partial-match cost for every 2-of-4 attribute combination:")
	for _, spec := range workload.PartialMatchSpecs(4, 2) {
		label := ""
		for i, s := range spec {
			if s {
				if label != "" {
					label += "+"
				}
				label += names[i]
			}
		}
		tr.ResetAccessCount()
		matches := 0
		err := tr.PartialMatch(probe, spec, func(p bvtree.Point, id uint64) bool {
			matches++
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
		acc := tr.ResetAccessCount()
		fmt.Printf("  %-17s %6d node accesses, %d matches\n", label, acc, matches)
	}

	fmt.Println("\nthe costs differ only with the attributes' selectivities, not their")
	fmt.Println("position — the symmetry property of §1 of the paper")
}
