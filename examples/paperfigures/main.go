// Paperfigures regenerates the analytic artifacts of the paper's
// evaluation (§7) in one shot: Figures 7-1 and 7-2, the equation tables
// and the §7.3 capacity summary. It is a thin front-end over the same
// experiment registry cmd/bvbench uses.
package main

import (
	"fmt"
	"log"
	"os"

	"bvtree/internal/bench"
)

func main() {
	for _, id := range []string{"eq", "fig7-1", "fig7-2", "eq73", "tab7-3"} {
		if err := bench.Run(id, os.Stdout, 1); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
