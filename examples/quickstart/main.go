// Quickstart: the smallest useful BV-tree program — insert 2-D points,
// look one up, run a range query, and print the tree's structural
// statistics showing the paper's occupancy guarantee.
package main

import (
	"fmt"
	"log"

	"bvtree"
)

func main() {
	tr, err := bvtree.New(bvtree.Options{Dims: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Insert a small grid of points; payloads are record IDs.
	id := uint64(0)
	for x := uint64(0); x < 100; x++ {
		for y := uint64(0); y < 100; y++ {
			// Spread the grid across the full coordinate domain.
			p := bvtree.Point{x << 57, y << 57}
			if err := tr.Insert(p, id); err != nil {
				log.Fatal(err)
			}
			id++
		}
	}

	// Exact-match lookup.
	probe := bvtree.Point{42 << 57, 7 << 57}
	ids, err := tr.Lookup(probe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup %v -> record IDs %v\n", probe, ids)

	// Range query: a 10x10 window of the grid.
	rect, err := bvtree.NewRect(
		bvtree.Point{10 << 57, 10 << 57},
		bvtree.Point{19 << 57, 19 << 57},
	)
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	err = tr.RangeQuery(rect, func(p bvtree.Point, id uint64) bool {
		n++
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range query found %d points (expected 100)\n", n)

	// Delete and verify.
	if ok, err := tr.Delete(probe, ids[0]); err != nil || !ok {
		log.Fatalf("delete failed: %v %v", ok, err)
	}
	if ok, _ := tr.Contains(probe); ok {
		log.Fatal("point still present after delete")
	}
	fmt.Printf("deleted %v; %d items remain\n", probe, tr.Len())

	// The paper's structural guarantees, measured.
	st, err := tr.CollectStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("height=%d, %d data pages, min data occupancy %.0f%% (paper guarantees >=33%%)\n",
		st.Height, st.DataPages, st.DataMinOcc*100)
}
