// Spatialdb: a small persistent spatial database of world cities built on
// the paged BV-tree — the kind of workload (2-D geographic points with
// heavy clustering) that motivates multidimensional indexing. It
// demonstrates float-coordinate normalisation, persistence with reopen,
// bounding-box queries and a k-nearest-neighbour search implemented with
// shrinking range queries on top of the public API.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"sort"

	"bvtree"
)

// city is a record in the application's own table; the tree stores the
// index from (lat, lon) to the record slot.
type city struct {
	name     string
	lat, lon float64
	pop      int
}

var cities = []city{
	{"Tokyo", 35.68, 139.69, 37400000},
	{"Delhi", 28.61, 77.21, 29400000},
	{"Shanghai", 31.23, 121.47, 26300000},
	{"São Paulo", -23.55, -46.63, 21700000},
	{"Mexico City", 19.43, -99.13, 21600000},
	{"Cairo", 30.04, 31.24, 20100000},
	{"Mumbai", 19.08, 72.88, 20000000},
	{"Beijing", 39.90, 116.41, 19600000},
	{"Dhaka", 23.81, 90.41, 19600000},
	{"Osaka", 34.69, 135.50, 19300000},
	{"New York", 40.71, -74.01, 18800000},
	{"Karachi", 24.86, 67.01, 15400000},
	{"Buenos Aires", -34.60, -58.38, 15000000},
	{"Istanbul", 41.01, 28.98, 14800000},
	{"Kolkata", 22.57, 88.36, 14900000},
	{"Lagos", 6.52, 3.38, 13900000},
	{"London", 51.51, -0.13, 9300000},
	{"Paris", 48.86, 2.35, 11000000},
	{"Munich", 48.14, 11.58, 1500000},
	{"Berlin", 52.52, 13.41, 3600000},
	{"Madrid", 40.42, -3.70, 6600000},
	{"Rome", 41.90, 12.50, 4300000},
	{"Vienna", 48.21, 16.37, 1900000},
	{"Zurich", 47.38, 8.54, 1400000},
	{"Amsterdam", 52.37, 4.90, 1100000},
	{"San Jose", 37.34, -121.89, 1000000},
	{"San Francisco", 37.77, -122.42, 880000},
	{"Los Angeles", 34.05, -118.24, 12400000},
	{"Chicago", 41.88, -87.63, 8900000},
	{"Sydney", -33.87, 151.21, 4900000},
	{"Melbourne", -37.81, 144.96, 4900000},
	{"Singapore", 1.35, 103.82, 5600000},
	{"Nairobi", -1.29, 36.82, 4400000},
	{"Moscow", 55.76, 37.62, 12500000},
	{"Toronto", 43.65, -79.38, 6200000},
}

func pointFor(c city) bvtree.Point {
	return bvtree.Point{
		bvtree.NormalizeFloat(c.lat, -90, 90),
		bvtree.NormalizeFloat(c.lon, -180, 180),
	}
}

func main() {
	dir, err := os.MkdirTemp("", "spatialdb")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "cities.db")

	// Build and persist.
	st, err := bvtree.NewFileStore(path, bvtree.FileStoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := bvtree.NewPaged(st, bvtree.Options{Dims: 2, DataCapacity: 8, Fanout: 8})
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range cities {
		if err := tr.Insert(pointFor(c), uint64(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted %d cities to %s\n", len(cities), path)

	// Reopen cold.
	st2, err := bvtree.OpenFileStore(path, bvtree.FileStoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer st2.Close()
	tr, err = bvtree.OpenPaged(st2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reopened: %d cities, index height %d\n\n", tr.Len(), tr.Height())

	// Bounding-box query: Central Europe.
	rect, err := bvtree.NewRect(
		bvtree.Point{bvtree.NormalizeFloat(45, -90, 90), bvtree.NormalizeFloat(0, -180, 180)},
		bvtree.Point{bvtree.NormalizeFloat(55, -90, 90), bvtree.NormalizeFloat(20, -180, 180)},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cities with lat in [45,55] and lon in [0,20]:")
	err = tr.RangeQuery(rect, func(p bvtree.Point, id uint64) bool {
		c := cities[id]
		fmt.Printf("  %-10s (%.2f, %.2f) pop %d\n", c.name, c.lat, c.lon, c.pop)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}

	// k-nearest-neighbour with the tree's best-first search. Note: the
	// index ranks by distance in normalised coordinate space; for display
	// we re-rank the returned candidates by great-circle distance.
	probe := city{name: "probe", lat: 48.0, lon: 10.0}
	fmt.Printf("\n3 nearest cities to (%.1f, %.1f):\n", probe.lat, probe.lon)
	nbrs, err := tr.Nearest(pointFor(probe), 5)
	if err != nil {
		log.Fatal(err)
	}
	type hit struct {
		c  city
		km float64
	}
	hits := make([]hit, len(nbrs))
	for i, nb := range nbrs {
		c := cities[nb.Payload]
		hits[i] = hit{c: c, km: haversineKm(probe.lat, probe.lon, c.lat, c.lon)}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].km < hits[j].km })
	for _, h := range hits[:3] {
		fmt.Printf("  %-10s %.0f km\n", h.c.name, h.km)
	}
}

func haversineKm(lat1, lon1, lat2, lon2 float64) float64 {
	const r = 6371
	rad := math.Pi / 180
	dLat := (lat2 - lat1) * rad
	dLon := (lon2 - lon1) * rad
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*rad)*math.Cos(lat2*rad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * r * math.Asin(math.Sqrt(a))
}
