// Spatialobjects demonstrates the paper's §8 extension: indexing extended
// spatial objects (rectangles) through the dual representation on the
// BV-tree. A small map layer of buildings, parks and districts —
// overlapping rectangles of very different sizes — is stored without
// clipping or duplication, then queried for intersection, containment and
// coverage.
package main

import (
	"fmt"
	"log"

	"bvtree"
	"bvtree/internal/geometry"
	"bvtree/internal/spatial"
)

type feature struct {
	name string
	// Coordinates in a 1000x1000 city grid.
	x0, y0, x1, y1 float64
}

var features = []feature{
	{"old-town district", 100, 100, 500, 500},
	{"harbour district", 450, 50, 900, 400},
	{"central park", 200, 200, 350, 380},
	{"city hall", 240, 240, 260, 270},
	{"museum", 300, 320, 330, 350},
	{"market hall", 470, 150, 510, 190},
	{"pier 1", 600, 60, 620, 140},
	{"pier 2", 660, 60, 680, 140},
	{"warehouse row", 700, 80, 880, 180},
	{"university campus", 520, 520, 780, 760},
	{"main library", 560, 560, 600, 600},
	{"stadium", 800, 500, 950, 640},
	{"ring road", 50, 50, 950, 950},
	{"river", 0, 420, 1000, 470},
}

func rectOf(f feature) bvtree.Rect {
	r, err := bvtree.NewRect(
		bvtree.Point{bvtree.NormalizeFloat(f.x0, 0, 1000), bvtree.NormalizeFloat(f.y0, 0, 1000)},
		bvtree.Point{bvtree.NormalizeFloat(f.x1, 0, 1000), bvtree.NormalizeFloat(f.y1, 0, 1000)},
	)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	ix, err := spatial.New(spatial.Options{Dims: 2, DataCapacity: 8, Fanout: 8})
	if err != nil {
		log.Fatal(err)
	}
	for i, f := range features {
		if err := ix.Insert(rectOf(f), uint64(i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("stored %d overlapping features — one index entry each, no clipping\n\n", ix.Len())

	window := rectOf(feature{"", 220, 220, 340, 360})
	show := func(title string, run func(q geometry.Rect, v spatial.Visitor) error) {
		fmt.Println(title)
		err := run(window, func(r geometry.Rect, id uint64) bool {
			fmt.Printf("  %s\n", features[id].name)
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	show("features INTERSECTING the viewport (220,220)-(340,360):", ix.SearchIntersects)
	show("features fully CONTAINED in the viewport:", ix.SearchContained)
	show("features COVERING the whole viewport:", ix.SearchContaining)

	st, err := ix.Tree().CollectStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("underlying 4-d dual-space BV-tree: height=%d, %d data pages, min occupancy %.0f%%\n",
		st.Height, st.DataPages, st.DataMinOcc*100)
}
