package bvtree_test

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"bvtree"
	"bvtree/internal/workload"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	tr, err := bvtree.New(bvtree.Options{Dims: 2, DataCapacity: 8, Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := workload.Generate(workload.Clustered, 2, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := tr.Insert(p, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 5000 {
		t.Fatalf("Len=%d", tr.Len())
	}
	if ok, _ := tr.Contains(pts[42]); !ok {
		t.Fatal("Contains failed")
	}
	nbrs, err := tr.Nearest(pts[0], 3)
	if err != nil || len(nbrs) != 3 || nbrs[0].Dist != 0 {
		t.Fatalf("Nearest: %v %v", nbrs, err)
	}
	rect := bvtree.UniverseRect(2)
	n, err := tr.Count(rect)
	if err != nil || n != 5000 {
		t.Fatalf("Count=%d err=%v", n, err)
	}
	st, err := tr.CollectStats()
	if err != nil || st.Items != 5000 {
		t.Fatalf("stats: %+v %v", st, err)
	}
	if _, err := tr.Maintain(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(true); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "api.db")
	st, err := bvtree.NewFileStore(path, bvtree.FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := bvtree.NewPaged(st, bvtree.Options{Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := bvtree.Point{
		bvtree.NormalizeFloat(48.14, -90, 90),
		bvtree.NormalizeFloat(11.58, -180, 180),
	}
	if err := tr.Insert(p, 7); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := bvtree.OpenFileStore(path, bvtree.FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	re, err := bvtree.OpenPaged(st2, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Lookup(p)
	if err != nil || len(got) != 1 || got[0] != 7 {
		t.Fatalf("reopened lookup: %v %v", got, err)
	}
	// Round-trip of the float normalisation used above.
	back := bvtree.DenormalizeFloat(p[0], -90, 90)
	if back < 48.13 || back > 48.15 {
		t.Fatalf("denormalize: %v", back)
	}
}

// TestConcurrentReadersAndWriters exercises the tree's thread safety:
// run with -race to verify. Writers insert disjoint ID ranges while
// readers run lookups, range queries and kNN concurrently.
func TestConcurrentReadersAndWriters(t *testing.T) {
	tr, err := bvtree.New(bvtree.Options{Dims: 2, DataCapacity: 16, Fanout: 16})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := workload.Generate(workload.Uniform, 2, 8000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts[:2000] {
		if err := tr.Insert(p, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 2000 + w; i < len(pts); i += 3 {
				if err := tr.Insert(pts[i], uint64(i)); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	for r := 0; r < 3; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < 500; i++ {
				switch i % 3 {
				case 0:
					if _, err := tr.Lookup(pts[rng.Intn(2000)]); err != nil {
						errCh <- err
						return
					}
				case 1:
					if _, err := tr.Nearest(pts[rng.Intn(2000)], 3); err != nil {
						errCh <- err
						return
					}
				default:
					rects := workload.QueryRects(2, 1, 0.01, uint64(i))
					if _, err := tr.Count(rects[0]); err != nil {
						errCh <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if tr.Len() != len(pts) {
		t.Fatalf("Len=%d want %d", tr.Len(), len(pts))
	}
	if err := tr.Validate(true); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInsertLookup is a property test over arbitrary point sets: for
// any batch of random points, every inserted point is found with its
// payload and the structural invariants hold.
func TestQuickInsertLookup(t *testing.T) {
	f := func(coords []uint64) bool {
		tr, err := bvtree.New(bvtree.Options{Dims: 2, DataCapacity: 4, Fanout: 4})
		if err != nil {
			return false
		}
		n := len(coords) / 2
		for i := 0; i < n; i++ {
			p := bvtree.Point{coords[2*i], coords[2*i+1]}
			if err := tr.Insert(p, uint64(i)); err != nil {
				return false
			}
		}
		for i := 0; i < n; i++ {
			p := bvtree.Point{coords[2*i], coords[2*i+1]}
			got, err := tr.Lookup(p)
			if err != nil {
				return false
			}
			found := false
			for _, v := range got {
				if v == uint64(i) {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return tr.Validate(true) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
